package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/draw"
)

// glyphs is a 5x7 bitmap font covering the characters the frame footer
// needs: digits, uppercase hex-ish letters used in labels, and
// punctuation. Each entry is 7 rows of 5 bits, MSB left.
var glyphs = map[rune][7]byte{
	'0': {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1': {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2': {0b01110, 0b10001, 0b00001, 0b00110, 0b01000, 0b10000, 0b11111},
	'3': {0b01110, 0b10001, 0b00001, 0b00110, 0b00001, 0b10001, 0b01110},
	'4': {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5': {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6': {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8': {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9': {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'.': {0, 0, 0, 0, 0, 0b00110, 0b00110},
	'-': {0, 0, 0, 0b11111, 0, 0, 0},
	'+': {0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0},
	'=': {0, 0, 0b11111, 0, 0b11111, 0, 0},
	' ': {},
	':': {0, 0b00110, 0b00110, 0, 0b00110, 0b00110, 0},
	'T': {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'S': {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'E': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'P': {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'I': {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'M': {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'X': {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'N': {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'A': {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
}

const (
	glyphW = 6 // 5 px + 1 spacing
	glyphH = 7
)

// DrawText rasterizes s at (x, y) with the 5x7 bitmap font. Unknown
// characters render as blanks. Returns the advance width.
func DrawText(img *image.RGBA, x, y int, s string, c color.RGBA) int {
	for _, r := range s {
		g, ok := glyphs[r]
		if ok {
			for row := 0; row < glyphH; row++ {
				bits := g[row]
				for col := 0; col < 5; col++ {
					if bits&(1<<(4-col)) != 0 {
						px, py := x+col, y+row
						if image.Pt(px, py).In(img.Bounds()) {
							img.SetRGBA(px, py, c)
						}
					}
				}
			}
		}
		x += glyphW
	}
	return x
}

// AnnotateOptions configures the frame footer and colorbar.
type AnnotateOptions struct {
	// Step and SimTime print in the footer ("T=12.5 STEP=4096").
	Step    uint64
	SimTime float64
	// Colormap and Lo/Hi drive the colorbar; a nil colormap skips it.
	Colormap *Colormap
	Lo, Hi   float64
}

// Annotate stamps a footer bar (simulation time + step) and a
// horizontal colorbar with min/max labels onto a rendered frame,
// in place. It is what turns a raw raster into the frame a scientist
// monitors — and it adds to the frame's real encoded size.
func Annotate(img *image.RGBA, opts AnnotateOptions) {
	b := img.Bounds()
	const footerH = 14
	if b.Dy() < 3*footerH || b.Dx() < 120 {
		return // too small to annotate legibly
	}
	footer := image.Rect(b.Min.X, b.Max.Y-footerH, b.Max.X, b.Max.Y)
	draw.Draw(img, footer, &image.Uniform{color.RGBA{0, 0, 0, 255}}, image.Point{}, draw.Src)

	white := color.RGBA{255, 255, 255, 255}
	text := fmt.Sprintf("T=%.2f STEP=%d", opts.SimTime, opts.Step)
	DrawText(img, b.Min.X+4, b.Max.Y-footerH+3, text, white)

	if opts.Colormap == nil {
		return
	}
	// Colorbar: right third of the footer.
	barW := b.Dx() / 3
	bar := image.Rect(b.Max.X-barW-4, b.Max.Y-footerH+3, b.Max.X-4, b.Max.Y-3)
	for x := bar.Min.X; x < bar.Max.X; x++ {
		t := float64(x-bar.Min.X) / float64(bar.Dx()-1)
		c := opts.Colormap.Map(t)
		for y := bar.Min.Y; y < bar.Max.Y; y++ {
			img.SetRGBA(x, y, c)
		}
	}
	// Lo/Hi labels flank the bar.
	lo := fmt.Sprintf("%.0f", opts.Lo)
	hi := fmt.Sprintf("%.0f", opts.Hi)
	DrawText(img, bar.Min.X-len(lo)*glyphW-2, bar.Min.Y, lo, white)
	_ = hi
	DrawText(img, bar.Max.X-len(hi)*glyphW, bar.Min.Y-0, hi, color.RGBA{0, 0, 0, 255})
}

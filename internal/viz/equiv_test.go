package viz

import (
	"image/color"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/heat"
)

// referenceMap is Colormap.Map as written before the lookup-table
// acceleration: binary search over the stops, then lerp8. The
// accelerated Map must agree bit for bit on every input.
func referenceMap(c *Colormap, t float64) color.RGBA {
	if t <= 0 {
		return c.colors[0]
	}
	if t >= 1 {
		return c.colors[len(c.colors)-1]
	}
	i := sort.SearchFloat64s(c.stops, t)
	lo, hi := c.stops[i-1], c.stops[i]
	f := (t - lo) / (hi - lo)
	a, b := c.colors[i-1], c.colors[i]
	return color.RGBA{
		R: lerp8(a.R, b.R, f),
		G: lerp8(a.G, b.G, f),
		B: lerp8(a.B, b.B, f),
		A: 255,
	}
}

// TestMapMatchesReference exercises the lut-accelerated Map against
// the binary-search reference over randomized inputs, exact stop
// values, and the lut bucket boundaries — the places an off-by-one in
// the table would surface.
func TestMapMatchesReference(t *testing.T) {
	// A dense irregular map alongside the built-ins so lut buckets
	// spanning several stops get exercised too.
	stops := []float64{0, 0.001, 0.002, 0.1, 0.10001, 0.5, 0.73, 0.74, 0.999, 1}
	colors := make([]color.RGBA, len(stops))
	rng := rand.New(rand.NewSource(3))
	for i := range colors {
		colors[i] = color.RGBA{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)), 255}
	}
	maps := []*Colormap{Inferno(), CoolWarm(), Grayscale(), NewColormap("dense", stops, colors)}
	for _, cm := range maps {
		if cm.lut == nil {
			t.Fatalf("%s: expected lut acceleration", cm.Name())
		}
		check := func(v float64) {
			t.Helper()
			if got, want := cm.Map(v), referenceMap(cm, v); got != want {
				t.Fatalf("%s: Map(%v) = %v, reference %v", cm.Name(), v, got, want)
			}
		}
		for i := 0; i < 100000; i++ {
			check(rng.Float64()*1.2 - 0.1)
		}
		for _, s := range cm.stops {
			check(s)
		}
		for b := 0; b <= 256; b++ {
			v := float64(b) / 256
			check(v)
			check(v - 1e-16)
			check(v + 1e-16)
		}
	}
}

// referenceMarchingSquares is the cell scan as written before the
// table-driven restructuring: per-cell At loads and closure-built
// edge points. The rewritten scan must emit the identical segment
// sequence and cell count.
func referenceMarchingSquares(g *heat.Grid, level float64) ([]Segment, int) {
	var segs []Segment
	cells := 0
	for y := 0; y < g.NY-1; y++ {
		for x := 0; x < g.NX-1; x++ {
			cells++
			tl := g.At(x, y)
			tr := g.At(x+1, y)
			br := g.At(x+1, y+1)
			bl := g.At(x, y+1)

			idx := 0
			if tl >= level {
				idx |= 8
			}
			if tr >= level {
				idx |= 4
			}
			if br >= level {
				idx |= 2
			}
			if bl >= level {
				idx |= 1
			}
			if idx == 0 || idx == 15 {
				continue
			}

			top := func() (float64, float64) { return float64(x) + frac(tl, tr, level), float64(y) }
			bottom := func() (float64, float64) { return float64(x) + frac(bl, br, level), float64(y + 1) }
			left := func() (float64, float64) { return float64(x), float64(y) + frac(tl, bl, level) }
			right := func() (float64, float64) { return float64(x + 1), float64(y) + frac(tr, br, level) }

			emit := func(ax, ay, bx, by float64) {
				segs = append(segs, Segment{ax, ay, bx, by})
			}
			switch idx {
			case 1, 14:
				ax, ay := left()
				bx, by := bottom()
				emit(ax, ay, bx, by)
			case 2, 13:
				ax, ay := bottom()
				bx, by := right()
				emit(ax, ay, bx, by)
			case 3, 12:
				ax, ay := left()
				bx, by := right()
				emit(ax, ay, bx, by)
			case 4, 11:
				ax, ay := top()
				bx, by := right()
				emit(ax, ay, bx, by)
			case 6, 9:
				ax, ay := top()
				bx, by := bottom()
				emit(ax, ay, bx, by)
			case 7, 8:
				ax, ay := left()
				bx, by := top()
				emit(ax, ay, bx, by)
			case 5:
				if (tl+tr+br+bl)/4 >= level {
					ax, ay := left()
					bx, by := top()
					emit(ax, ay, bx, by)
					cx, cy := bottom()
					dx, dy := right()
					emit(cx, cy, dx, dy)
				} else {
					ax, ay := left()
					bx, by := bottom()
					emit(ax, ay, bx, by)
					cx, cy := top()
					dx, dy := right()
					emit(cx, cy, dx, dy)
				}
			case 10:
				if (tl+tr+br+bl)/4 >= level {
					ax, ay := top()
					bx, by := right()
					emit(ax, ay, bx, by)
					cx, cy := left()
					dx, dy := bottom()
					emit(cx, cy, dx, dy)
				} else {
					ax, ay := left()
					bx, by := top()
					emit(ax, ay, bx, by)
					cx, cy := bottom()
					dx, dy := right()
					emit(cx, cy, dx, dy)
				}
			}
		}
	}
	return segs, cells
}

// TestMarchingSquaresMatchesReference compares the table-driven scan
// against the closure-based reference over randomized grids. Values
// are drawn from a small set around the level so saddle cells, exact
// ties (corner == level), and flat edges (a == b) all occur often.
func TestMarchingSquaresMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	levels := []float64{0.5}
	quantized := []float64{0, 0.25, 0.5, 0.75, 1}
	for trial := 0; trial < 60; trial++ {
		nx := 2 + rng.Intn(30)
		ny := 2 + rng.Intn(30)
		g := heat.NewGrid(nx, ny)
		if trial%2 == 0 {
			for i := range g.Data {
				g.Data[i] = quantized[rng.Intn(len(quantized))]
			}
		} else {
			for i := range g.Data {
				g.Data[i] = rng.Float64()
			}
		}
		for _, level := range levels {
			gotSegs, gotCells := MarchingSquares(g, level)
			wantSegs, wantCells := referenceMarchingSquares(g, level)
			if gotCells != wantCells {
				t.Fatalf("trial %d (%dx%d): cells = %d, reference %d", trial, nx, ny, gotCells, wantCells)
			}
			if !reflect.DeepEqual(gotSegs, wantSegs) {
				t.Fatalf("trial %d (%dx%d): %d segments != reference %d\n got %v\nwant %v",
					trial, nx, ny, len(gotSegs), len(wantSegs), gotSegs, wantSegs)
			}
		}
	}
}

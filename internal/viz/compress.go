package viz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/field"
)

// compressScratch recycles the per-call quantization buffer and the
// DEFLATE writer: in-situ compression runs once per visualization
// event, and a fresh flate.Writer is a ~700 KiB allocation. A Reset
// writer produces byte-identical output to a fresh one.
type compressScratch struct {
	raw []byte
	fw  *flate.Writer
}

var compressPool = sync.Pool{New: func() any { return new(compressScratch) }}

// CompressField implements application-driven field compression in the
// spirit of Wang et al. [22]: the field is quantized to 16-bit values
// over its own range (plenty for visualization) and the quantized
// buffer is DEFLATE-compressed. Smooth science fields compress well;
// the returned blob decompresses bit-exactly to the quantized field.
func CompressField(g *field.Grid) ([]byte, error) {
	lo, hi := g.MinMax()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	sc := compressPool.Get().(*compressScratch)
	defer compressPool.Put(sc)
	// Header: dims + range, then 16-bit quantized samples.
	need := 24 + len(g.Data)*2
	if cap(sc.raw) < need {
		sc.raw = make([]byte, need)
	}
	raw := sc.raw[:need]
	binary.LittleEndian.PutUint32(raw[0:], uint32(g.NX))
	binary.LittleEndian.PutUint32(raw[4:], uint32(g.NY))
	binary.LittleEndian.PutUint64(raw[8:], math.Float64bits(lo))
	binary.LittleEndian.PutUint64(raw[16:], math.Float64bits(hi))
	// Quantize, then delta-encode: neighbors in a smooth field differ by
	// a few quantization steps, so the delta stream is low-entropy and
	// DEFLATE bites hard.
	var prev uint16
	for i, v := range g.Data {
		q := uint16((v - lo) / span * 65535)
		binary.LittleEndian.PutUint16(raw[24+i*2:], q-prev)
		prev = q
	}
	var buf bytes.Buffer
	if sc.fw == nil {
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		sc.fw = w
	} else {
		sc.fw.Reset(&buf)
	}
	if _, err := sc.fw.Write(raw); err != nil {
		return nil, err
	}
	if err := sc.fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecompressField reverses CompressField, returning the quantized field
// (values within span/65535 of the originals).
func DecompressField(blob []byte) (*field.Grid, error) {
	r := flate.NewReader(bytes.NewReader(blob))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("viz: decompress: %w", err)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if len(raw) < 24 {
		return nil, fmt.Errorf("viz: compressed field truncated")
	}
	nx := int(binary.LittleEndian.Uint32(raw[0:]))
	ny := int(binary.LittleEndian.Uint32(raw[4:]))
	lo := math.Float64frombits(binary.LittleEndian.Uint64(raw[8:]))
	hi := math.Float64frombits(binary.LittleEndian.Uint64(raw[16:]))
	if nx <= 0 || ny <= 0 || nx*ny > 1<<26 || len(raw) != 24+nx*ny*2 {
		return nil, fmt.Errorf("viz: compressed field header implausible (%dx%d, %d bytes)", nx, ny, len(raw))
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	g := field.New(nx, ny)
	var q uint16
	for i := range g.Data {
		q += binary.LittleEndian.Uint16(raw[24+i*2:])
		g.Data[i] = lo + float64(q)/65535*span
	}
	return g, nil
}

// CompressionRatio compresses the field and reports original quantized
// bytes divided by compressed bytes (higher is better).
func CompressionRatio(g *field.Grid) (float64, error) {
	blob, err := CompressField(g)
	if err != nil {
		return 0, err
	}
	return float64(len(g.Data)*2) / float64(len(blob)), nil
}

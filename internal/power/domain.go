// Package power is the power-accounting bus of the simulated node.
//
// Every physical subsystem (CPU package, DRAM, disk, rest-of-system)
// owns a Domain. A domain's power level is piecewise constant over
// virtual time: models call SetLevel whenever activity changes, and the
// domain integrates energy exactly between changes. Samplers (the RAPL
// emulation, the Wattsup meter) read instantaneous power and cumulative
// energy without disturbing the integration.
package power

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Domain tracks one subsystem's power level over virtual time and its
// exactly-integrated cumulative energy.
type Domain struct {
	name    string
	engine  *sim.Engine
	level   units.Watts
	since   sim.Time     // when the current level was set
	energy  units.Joules // integrated up to 'since'
	peak    units.Watts
	started sim.Time
}

// NewDomain creates a domain with an initial power level (typically the
// subsystem's static/idle power).
func NewDomain(engine *sim.Engine, name string, initial units.Watts) *Domain {
	if initial < 0 {
		panic(fmt.Sprintf("power: domain %q initial level %v is negative", name, initial))
	}
	return &Domain{
		name:    name,
		engine:  engine,
		level:   initial,
		since:   engine.Now(),
		peak:    initial,
		started: engine.Now(),
	}
}

// Name returns the domain name ("package", "dram", "disk", "rest").
func (d *Domain) Name() string { return d.name }

// settle folds the energy of the interval [since, now] into the
// accumulator and moves since forward.
func (d *Domain) settle() {
	now := d.engine.Now()
	if now > d.since {
		d.energy += units.Energy(d.level, now-d.since)
		d.since = now
	}
}

// SetLevel changes the domain's power level as of the current virtual
// time. Negative levels panic: power draw is never negative.
func (d *Domain) SetLevel(w units.Watts) {
	if w < 0 {
		panic(fmt.Sprintf("power: domain %q level %v is negative", d.name, w))
	}
	d.settle()
	d.level = w
	if w > d.peak {
		d.peak = w
	}
}

// Add changes the level by a delta; convenient for models that stack
// independent contributions.
func (d *Domain) Add(delta units.Watts) { d.SetLevel(d.level + delta) }

// Level returns the instantaneous power draw.
func (d *Domain) Level() units.Watts { return d.level }

// Energy returns cumulative energy consumed from domain creation up to
// the current virtual time.
func (d *Domain) Energy() units.Joules {
	d.settle()
	return d.energy
}

// Peak returns the highest level ever set.
func (d *Domain) Peak() units.Watts { return d.peak }

// AveragePower returns the mean power since domain creation.
func (d *Domain) AveragePower() units.Watts {
	return units.AveragePower(d.Energy(), d.engine.Now()-d.started)
}

// Bus aggregates domains into the full system. The wall meter reads the
// bus; RAPL reads individual domains.
type Bus struct {
	engine  *sim.Engine
	domains []*Domain
	// psuLoss converts DC load to wall power: wall = dc * (1 + psuLoss).
	// The paper's "rest of system" row already absorbs PSU inefficiency,
	// so profiles normally leave this at zero, but it is modeled so the
	// attribution experiments can separate it.
	psuLoss float64
}

// NewBus creates an empty bus. psuLoss is the fractional PSU conversion
// loss applied on top of the summed domain power (0 for none).
func NewBus(engine *sim.Engine, psuLoss float64) *Bus {
	if psuLoss < 0 {
		panic("power: negative PSU loss")
	}
	return &Bus{engine: engine, psuLoss: psuLoss}
}

// Attach registers a domain on the bus and returns it, for chaining.
func (b *Bus) Attach(d *Domain) *Domain {
	b.domains = append(b.domains, d)
	return d
}

// NewDomain creates a domain and attaches it in one step.
func (b *Bus) NewDomain(name string, initial units.Watts) *Domain {
	return b.Attach(NewDomain(b.engine, name, initial))
}

// Domain returns the attached domain with the given name, or nil.
func (b *Bus) Domain(name string) *Domain {
	for _, d := range b.domains {
		if d.name == name {
			return d
		}
	}
	return nil
}

// Domains returns the attached domains in attachment order.
func (b *Bus) Domains() []*Domain { return b.domains }

// SystemPower returns the instantaneous wall power: the sum of all
// domain levels scaled by PSU loss.
func (b *Bus) SystemPower() units.Watts {
	var sum units.Watts
	for _, d := range b.domains {
		sum += d.level
	}
	return units.Watts(float64(sum) * (1 + b.psuLoss))
}

// SystemEnergy returns cumulative wall energy across all domains.
func (b *Bus) SystemEnergy() units.Joules {
	var sum units.Joules
	for _, d := range b.domains {
		sum += d.Energy()
	}
	return units.Joules(float64(sum) * (1 + b.psuLoss))
}

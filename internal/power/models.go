package power

import (
	"fmt"

	"repro/internal/units"
)

// Intensity characterizes how power-hungry a core's activity is relative
// to a fully compute-bound loop. Memory-bound code stalls more and draws
// less core power; I/O submission barely wakes the core.
type Intensity float64

// Canonical activity intensities used by the workload models.
const (
	IntensityCompute Intensity = 1.0  // dense stencil / arithmetic loops
	IntensityRender  Intensity = 0.85 // rasterization: mixed compute + memory
	IntensityMemory  Intensity = 0.60 // streaming copies, serialization
	IntensityIO      Intensity = 0.10 // syscall submission, page-cache bookkeeping
)

// CPUModel converts "N cores active at intensity i, frequency f" into
// package power. Power splits into a static per-socket floor (uncore,
// leakage, idle cores in C1) and a dynamic per-core component that
// scales with intensity and, for the frequency-scaling experiments, with
// f·V² approximated as (f/fNominal)³.
type CPUModel struct {
	Sockets        int
	CoresPerSocket int
	// StaticPerSocket is drawn whenever the socket is powered,
	// regardless of load.
	StaticPerSocket units.Watts
	// DynamicPerCore is the extra power of one core running
	// compute-bound at nominal frequency.
	DynamicPerCore units.Watts
	// NominalGHz and CurrentGHz implement DVFS; equal by default.
	NominalGHz float64
	CurrentGHz float64
	// MinGHz bounds downward throttling (default: NominalGHz / 2).
	MinGHz float64
	// PowerCap, when positive, emulates a RAPL package power limit
	// (PL1): the model throttles frequency just enough to keep package
	// power at or under the cap. Compute durations scale accordingly
	// via EffectiveGHz.
	PowerCap units.Watts

	domain *Domain

	activeCores int
	intensity   Intensity
	// throttledGHz is the operating point after the cap is applied.
	throttledGHz float64
}

// Bind attaches the model to a power domain and sets the idle level.
func (m *CPUModel) Bind(d *Domain) {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 {
		panic("power: CPUModel needs at least one socket and core")
	}
	if m.CurrentGHz == 0 {
		m.CurrentGHz = m.NominalGHz
	}
	m.domain = d
	m.apply()
}

// TotalCores returns the number of hardware cores in the node.
func (m *CPUModel) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// SetLoad declares that 'cores' cores are running at the given
// intensity; the rest idle. It clamps cores to the hardware limit.
func (m *CPUModel) SetLoad(cores int, intensity Intensity) {
	if cores < 0 {
		cores = 0
	}
	if max := m.TotalCores(); cores > max {
		cores = max
	}
	m.activeCores = cores
	m.intensity = intensity
	m.apply()
}

// SetFrequency changes the DVFS operating point (GHz) and reapplies
// power. It panics on non-positive frequencies.
func (m *CPUModel) SetFrequency(ghz float64) {
	if ghz <= 0 {
		panic(fmt.Sprintf("power: frequency %v GHz must be positive", ghz))
	}
	m.CurrentGHz = ghz
	m.apply()
}

// FrequencyScale returns the dynamic-power multiplier for the
// effective (cap-throttled) DVFS point: (f/fnom)³, the classic f·V²
// approximation.
func (m *CPUModel) FrequencyScale() float64 {
	if m.NominalGHz == 0 {
		return 1
	}
	r := m.EffectiveGHz() / m.NominalGHz
	return r * r * r
}

// EffectiveGHz returns the operating frequency after the power cap is
// applied: CurrentGHz when uncapped or under the cap, otherwise the
// highest frequency that keeps package power at the cap (floored at
// MinGHz).
func (m *CPUModel) EffectiveGHz() float64 {
	if m.throttledGHz > 0 {
		return m.throttledGHz
	}
	return m.CurrentGHz
}

// Throttled reports whether the cap is currently limiting frequency.
func (m *CPUModel) Throttled() bool {
	return m.throttledGHz > 0 && m.throttledGHz < m.CurrentGHz
}

// SlowdownFactor returns how much longer compute takes at the
// effective frequency (nominal / effective), for charging time.
func (m *CPUModel) SlowdownFactor() float64 {
	eff := m.EffectiveGHz()
	if eff <= 0 || m.NominalGHz == 0 {
		return 1
	}
	return m.CurrentGHz / eff
}

// powerAt computes package power at frequency f for the current load.
func (m *CPUModel) powerAt(f float64) units.Watts {
	r := 1.0
	if m.NominalGHz > 0 {
		r = f / m.NominalGHz
	}
	static := units.Watts(float64(m.Sockets)) * m.StaticPerSocket
	dynamic := units.Watts(float64(m.activeCores) * float64(m.intensity) *
		float64(m.DynamicPerCore) * r * r * r)
	return static + dynamic
}

// Power returns the current package power for the configured load,
// with the cap applied.
func (m *CPUModel) Power() units.Watts { return m.powerAt(m.EffectiveGHz()) }

// enforceCap solves for the throttled frequency.
func (m *CPUModel) enforceCap() {
	m.throttledGHz = 0
	if m.PowerCap <= 0 || m.powerAt(m.CurrentGHz) <= m.PowerCap {
		return
	}
	static := units.Watts(float64(m.Sockets)) * m.StaticPerSocket
	dynNominal := float64(m.activeCores) * float64(m.intensity) * float64(m.DynamicPerCore)
	minGHz := m.MinGHz
	if minGHz <= 0 {
		minGHz = m.NominalGHz / 2
	}
	if dynNominal <= 0 || m.PowerCap <= static {
		m.throttledGHz = minGHz
		return
	}
	// (f/fn)^3 * dynNominal = cap - static
	ratio := cbrt(float64(m.PowerCap-static) / dynNominal)
	f := m.NominalGHz * ratio
	if f < minGHz {
		f = minGHz
	}
	if f > m.CurrentGHz {
		f = m.CurrentGHz
	}
	m.throttledGHz = f
}

// cbrt is a dependency-free cube root for positive inputs.
func cbrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (2*z + x/(z*z)) / 3
	}
	return z
}

func (m *CPUModel) apply() {
	m.enforceCap()
	if m.domain != nil {
		m.domain.SetLevel(m.Power())
	}
}

// DRAMModel converts memory traffic into DRAM power: a static
// refresh/standby floor plus a dynamic term proportional to bandwidth.
type DRAMModel struct {
	// Static is the all-DIMMs standby + refresh power.
	Static units.Watts
	// PerGBs is dynamic watts per GB/s of traffic.
	PerGBs float64

	domain *Domain
	gbs    float64
}

// Bind attaches the model to a power domain and sets the idle level.
func (m *DRAMModel) Bind(d *Domain) {
	m.domain = d
	m.apply()
}

// SetBandwidth declares the current memory traffic in GB/s.
func (m *DRAMModel) SetBandwidth(gbs float64) {
	if gbs < 0 {
		gbs = 0
	}
	m.gbs = gbs
	m.apply()
}

// Power returns the current DRAM power.
func (m *DRAMModel) Power() units.Watts {
	return m.Static + units.Watts(m.gbs*m.PerGBs)
}

func (m *DRAMModel) apply() {
	if m.domain != nil {
		m.domain.SetLevel(m.Power())
	}
}

// RestModel is the motherboard / fans / NIC / PSU-overhead remainder.
// It draws a constant base plus a fan term that tracks the heat being
// produced by the other domains (fans spin up under load).
type RestModel struct {
	// Base is the constant floor.
	Base units.Watts
	// FanCoeff is extra watts per watt of other-domain power above
	// FanRef (fans ramp with dissipated heat).
	FanCoeff float64
	// FanRef is the other-domain power at which fans sit at minimum.
	FanRef units.Watts

	domain *Domain
	other  units.Watts
}

// Bind attaches the model to a power domain and sets the base level.
func (m *RestModel) Bind(d *Domain) {
	m.domain = d
	m.apply()
}

// ObserveOtherPower tells the model how much the rest of the node is
// currently drawing, so the fan term can respond. The node calls this
// whenever any other domain changes level.
func (m *RestModel) ObserveOtherPower(w units.Watts) {
	m.other = w
	m.apply()
}

// Power returns the current rest-of-system power.
func (m *RestModel) Power() units.Watts {
	excess := m.other - m.FanRef
	if excess < 0 {
		excess = 0
	}
	return m.Base + units.Watts(m.FanCoeff*float64(excess))
}

func (m *RestModel) apply() {
	if m.domain != nil {
		m.domain.SetLevel(m.Power())
	}
}

package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDomainIntegratesConstantLevel(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "disk", 5)
	e.Advance(100)
	if got := d.Energy(); !almostEqual(float64(got), 500, 1e-9) {
		t.Errorf("Energy = %v, want 500 J", got)
	}
}

func TestDomainIntegratesPiecewise(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "pkg", 42)
	e.Advance(10) // 420 J
	d.SetLevel(72)
	e.Advance(5) // 360 J
	d.SetLevel(42)
	e.Advance(10) // 420 J
	if got := d.Energy(); !almostEqual(float64(got), 1200, 1e-9) {
		t.Errorf("Energy = %v, want 1200 J", got)
	}
}

func TestDomainPeak(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "pkg", 40)
	d.SetLevel(90)
	d.SetLevel(60)
	if d.Peak() != 90 {
		t.Errorf("Peak = %v, want 90", d.Peak())
	}
}

func TestDomainAveragePower(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "pkg", 100)
	e.Advance(10)
	d.SetLevel(200)
	e.Advance(10)
	if got := d.AveragePower(); !almostEqual(float64(got), 150, 1e-9) {
		t.Errorf("AveragePower = %v, want 150", got)
	}
}

func TestDomainAdd(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "disk", 5)
	d.Add(8.5)
	if got := d.Level(); !almostEqual(float64(got), 13.5, 1e-9) {
		t.Errorf("Level after Add = %v, want 13.5", got)
	}
	d.Add(-8.5)
	if got := d.Level(); !almostEqual(float64(got), 5, 1e-9) {
		t.Errorf("Level after -Add = %v, want 5", got)
	}
}

func TestDomainNegativeLevelPanics(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("SetLevel(-1) did not panic")
		}
	}()
	d.SetLevel(-1)
}

func TestDomainSetLevelMidEventIsExact(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "pkg", 10)
	e.After(3, func() { d.SetLevel(20) })
	e.Advance(10)
	// 3s at 10 W + 7s at 20 W = 170 J
	if got := d.Energy(); !almostEqual(float64(got), 170, 1e-9) {
		t.Errorf("Energy = %v, want 170 J", got)
	}
}

// Property: energy is additive over any partition of the timeline, and
// equals sum(level_i * dt_i) for random level schedules.
func TestDomainEnergyProperty(t *testing.T) {
	f := func(steps []struct {
		Level uint8
		Dt    uint16
	}) bool {
		e := sim.NewEngine()
		d := NewDomain(e, "p", 0)
		var want float64
		for _, s := range steps {
			lvl := float64(s.Level)
			dt := float64(s.Dt) / 100
			d.SetLevel(units.Watts(lvl))
			e.Advance(units.Seconds(dt))
			want += lvl * dt
		}
		return almostEqual(float64(d.Energy()), want, 1e-6*(1+want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusAggregation(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e, 0)
	pkg := b.NewDomain("package", 42)
	dram := b.NewDomain("dram", 10)
	disk := b.NewDomain("disk", 5)
	rest := b.NewDomain("rest", 47.5)
	if got := b.SystemPower(); !almostEqual(float64(got), 104.5, 1e-9) {
		t.Errorf("SystemPower = %v, want 104.5", got)
	}
	e.Advance(2)
	if got := b.SystemEnergy(); !almostEqual(float64(got), 209, 1e-9) {
		t.Errorf("SystemEnergy = %v, want 209", got)
	}
	pkg.SetLevel(72)
	_ = dram
	_ = disk
	_ = rest
	if got := b.SystemPower(); !almostEqual(float64(got), 134.5, 1e-9) {
		t.Errorf("SystemPower after load = %v, want 134.5", got)
	}
}

func TestBusPSULoss(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e, 0.10)
	b.NewDomain("pkg", 100)
	if got := b.SystemPower(); !almostEqual(float64(got), 110, 1e-9) {
		t.Errorf("SystemPower with 10%% PSU loss = %v, want 110", got)
	}
}

func TestBusDomainLookup(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus(e, 0)
	b.NewDomain("dram", 10)
	if d := b.Domain("dram"); d == nil || d.Name() != "dram" {
		t.Error("Domain(\"dram\") lookup failed")
	}
	if d := b.Domain("nope"); d != nil {
		t.Error("Domain(\"nope\") returned a domain")
	}
}

func TestCPUModelIdleAndLoad(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{
		Sockets: 2, CoresPerSocket: 8,
		StaticPerSocket: 21, DynamicPerCore: 1.875,
		NominalGHz: 2.4,
	}
	m.Bind(d)
	if got := d.Level(); !almostEqual(float64(got), 42, 1e-9) {
		t.Errorf("idle package power = %v, want 42", got)
	}
	m.SetLoad(16, IntensityCompute)
	if got := d.Level(); !almostEqual(float64(got), 72, 1e-9) {
		t.Errorf("16-core compute package power = %v, want 72", got)
	}
	m.SetLoad(0, IntensityCompute)
	if got := d.Level(); !almostEqual(float64(got), 42, 1e-9) {
		t.Errorf("back-to-idle package power = %v, want 42", got)
	}
}

func TestCPUModelClampsCores(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{Sockets: 1, CoresPerSocket: 4, StaticPerSocket: 10, DynamicPerCore: 2, NominalGHz: 2}
	m.Bind(d)
	m.SetLoad(100, IntensityCompute)
	if got := d.Level(); !almostEqual(float64(got), 18, 1e-9) {
		t.Errorf("clamped load power = %v, want 18 (4 cores)", got)
	}
	m.SetLoad(-3, IntensityCompute)
	if got := d.Level(); !almostEqual(float64(got), 10, 1e-9) {
		t.Errorf("negative cores power = %v, want 10", got)
	}
}

func TestCPUModelIntensity(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{Sockets: 1, CoresPerSocket: 8, StaticPerSocket: 20, DynamicPerCore: 2, NominalGHz: 2.4}
	m.Bind(d)
	m.SetLoad(8, IntensityIO)
	if got := d.Level(); !almostEqual(float64(got), 20+8*2*0.10, 1e-9) {
		t.Errorf("IO-intensity power = %v, want 21.6", got)
	}
}

func TestCPUModelDVFS(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{Sockets: 1, CoresPerSocket: 1, StaticPerSocket: 10, DynamicPerCore: 8, NominalGHz: 2.0}
	m.Bind(d)
	m.SetLoad(1, IntensityCompute)
	if got := d.Level(); !almostEqual(float64(got), 18, 1e-9) {
		t.Errorf("nominal power = %v, want 18", got)
	}
	m.SetFrequency(1.0) // half frequency -> dynamic scales by (1/2)^3
	if got := d.Level(); !almostEqual(float64(got), 11, 1e-9) {
		t.Errorf("half-frequency power = %v, want 11", got)
	}
}

func TestCPUModelBadFrequencyPanics(t *testing.T) {
	m := &CPUModel{Sockets: 1, CoresPerSocket: 1, StaticPerSocket: 1, DynamicPerCore: 1, NominalGHz: 2}
	defer func() {
		if recover() == nil {
			t.Error("SetFrequency(0) did not panic")
		}
	}()
	m.SetFrequency(0)
}

func TestDRAMModel(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "dram", 0)
	m := &DRAMModel{Static: 10, PerGBs: 0.5}
	m.Bind(d)
	if got := d.Level(); !almostEqual(float64(got), 10, 1e-9) {
		t.Errorf("idle DRAM = %v, want 10", got)
	}
	m.SetBandwidth(12)
	if got := d.Level(); !almostEqual(float64(got), 16, 1e-9) {
		t.Errorf("12 GB/s DRAM = %v, want 16", got)
	}
	m.SetBandwidth(-4)
	if got := d.Level(); !almostEqual(float64(got), 10, 1e-9) {
		t.Errorf("negative bandwidth clamped = %v, want 10", got)
	}
}

func TestRestModelFanRamp(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "rest", 0)
	m := &RestModel{Base: 47.5, FanCoeff: 0.07, FanRef: 57}
	m.Bind(d)
	if got := d.Level(); !almostEqual(float64(got), 47.5, 1e-9) {
		t.Errorf("idle rest = %v, want 47.5", got)
	}
	m.ObserveOtherPower(93) // 36 W above ref -> +2.52 W of fan
	if got := d.Level(); !almostEqual(float64(got), 47.5+0.07*36, 1e-9) {
		t.Errorf("loaded rest = %v, want %v", got, 47.5+0.07*36)
	}
	m.ObserveOtherPower(10) // below ref -> no fan term
	if got := d.Level(); !almostEqual(float64(got), 47.5, 1e-9) {
		t.Errorf("below-ref rest = %v, want 47.5", got)
	}
}

func TestCPUModelPowerCapThrottles(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{
		Sockets: 2, CoresPerSocket: 8,
		StaticPerSocket: 21, DynamicPerCore: 1.875,
		NominalGHz: 2.4,
		PowerCap:   60, // uncapped full load would be 72 W
	}
	m.Bind(d)
	m.SetLoad(16, IntensityCompute)
	if got := float64(d.Level()); got > 60.001 {
		t.Errorf("capped package power = %v, want <= 60", got)
	}
	if !m.Throttled() {
		t.Error("model not reporting throttled")
	}
	if m.SlowdownFactor() <= 1 {
		t.Errorf("SlowdownFactor = %v, want > 1 under the cap", m.SlowdownFactor())
	}
	// Expected frequency: (60-42)/30 = 0.6 -> f = 2.4 * 0.6^(1/3).
	wantGHz := 2.4 * math.Cbrt(0.6)
	if got := m.EffectiveGHz(); math.Abs(got-wantGHz) > 1e-6 {
		t.Errorf("EffectiveGHz = %v, want %v", got, wantGHz)
	}
	// Idle load unthrottles.
	m.SetLoad(0, IntensityCompute)
	if m.Throttled() {
		t.Error("still throttled at idle")
	}
	if got := float64(d.Level()); math.Abs(got-42) > 1e-9 {
		t.Errorf("idle power under cap = %v, want 42", got)
	}
}

func TestCPUModelCapBelowStaticFloorsAtMinGHz(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{
		Sockets: 2, CoresPerSocket: 8,
		StaticPerSocket: 21, DynamicPerCore: 1.875,
		NominalGHz: 2.4, MinGHz: 1.2,
		PowerCap: 40, // below the 42 W static floor
	}
	m.Bind(d)
	m.SetLoad(16, IntensityCompute)
	if got := m.EffectiveGHz(); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("EffectiveGHz = %v, want MinGHz 1.2", got)
	}
	// Power exceeds the impossible cap but sits at the min-frequency level.
	want := 42 + 30*math.Pow(0.5, 3)
	if got := float64(d.Level()); math.Abs(got-want) > 1e-9 {
		t.Errorf("floored power = %v, want %v", got, want)
	}
}

func TestCPUModelUncappedUnchanged(t *testing.T) {
	e := sim.NewEngine()
	d := NewDomain(e, "package", 0)
	m := &CPUModel{Sockets: 2, CoresPerSocket: 8, StaticPerSocket: 21, DynamicPerCore: 1.875, NominalGHz: 2.4}
	m.Bind(d)
	m.SetLoad(16, IntensityCompute)
	if m.Throttled() || m.SlowdownFactor() != 1 {
		t.Error("uncapped model reports throttling")
	}
	if got := float64(d.Level()); math.Abs(got-72) > 1e-9 {
		t.Errorf("uncapped power = %v, want 72", got)
	}
}

// Property: bus system energy equals the sum of per-domain energies
// (with zero PSU loss) under random schedules.
func TestBusEnergyAdditivityProperty(t *testing.T) {
	f := func(levels []uint8) bool {
		e := sim.NewEngine()
		b := NewBus(e, 0)
		d1 := b.NewDomain("a", 1)
		d2 := b.NewDomain("b", 2)
		for i, lv := range levels {
			if i%2 == 0 {
				d1.SetLevel(units.Watts(lv))
			} else {
				d2.SetLevel(units.Watts(lv))
			}
			e.Advance(0.25)
		}
		sum := float64(d1.Energy() + d2.Energy())
		return almostEqual(float64(b.SystemEnergy()), sum, 1e-6*(1+sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

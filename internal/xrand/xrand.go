// Package xrand provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256** seeded via SplitMix64) used everywhere the
// simulator needs noise: measurement jitter on the wall-power meter,
// OS background activity, workload address streams.
//
// The standard library's math/rand would work, but owning the generator
// guarantees bit-identical experiment output across Go releases, which
// matters for a reproduction whose deliverable is a set of numbers.
package xrand

import "math"

// Rand is a deterministic PRNG. It is not safe for concurrent use; give
// each goroutine its own instance (see Split).
type Rand struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// New returns a generator seeded from seed via SplitMix64, so that
// similar seeds still produce uncorrelated streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return &r
}

// Split derives an independent generator from r, advancing r.
// Use it to hand uncorrelated streams to sub-components.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// SeedFor derives a stream seed from a master seed and a string key:
// an FNV-1a hash of the key is mixed into the master through the
// SplitMix64 finalizer. The derivation depends only on (master, key),
// never on call order, so components seeded by name stay bit-identical
// no matter how many sibling streams exist or in what order they are
// created — the property the parallel experiment suite relies on.
func SeedFor(master uint64, key string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	z := master ^ (h + 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int64n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal variate (Box–Muller, using both
// outputs alternately).
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.haveSpare = true
	return u * m
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/1000 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10_000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int64n(-1) did not panic")
		}
	}()
	New(1).Int64n(-1)
}

func TestInt64nRange(t *testing.T) {
	r := New(5)
	f := func(nRaw uint32) bool {
		n := int64(nRaw%1_000_000) + 1
		v := r.Int64n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestPermIsPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams produced %d/1000 identical outputs", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
